package main

import (
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"respat/internal/service"
)

// TestServeEndToEnd boots the server on an ephemeral port, exercises
// the API over real HTTP, and shuts it down with SIGTERM (the graceful
// path production uses).
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	logger := log.New(io.Discard, "", 0)
	done := make(chan error, 1)
	go func() {
		done <- serve(ln, service.New(service.Config{}), logger, 5*time.Second, false)
	}()
	base := "http://" + ln.Addr().String()

	// The listener is already open, so requests cannot race the boot.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	r, err := http.Post(base+"/v1/plan", "application/json",
		strings.NewReader(`{"kind":"PDMV","platform":"Hera"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", r.StatusCode, body)
	}
	var plan struct {
		Kind string  `json:"kind"`
		W    float64 `json:"w"`
	}
	if err := json.Unmarshal(body, &plan); err != nil || plan.Kind != "PDMV" || plan.W <= 0 {
		t.Fatalf("bad plan body: %s", body)
	}

	// Adaptive session round-trip: create via observe, read back.
	r, err = http.Post(base+"/v1/observe", "application/json",
		strings.NewReader(`{"session":"e2e","kind":"PDMV","platform":"Hera","failstop":{"events":1,"exposure":1e6}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("observe status %d: %s", r.StatusCode, body)
	}
	resp, err = http.Get(base + "/v1/adaptive?session=e2e")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive status %d: %s", resp.StatusCode, body)
	}
	var ar struct {
		Kind         string `json:"kind"`
		Observations int64  `json:"observations"`
	}
	if err := json.Unmarshal(body, &ar); err != nil || ar.Kind != "PDMV" || ar.Observations != 1 {
		t.Fatalf("bad adaptive body: %s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within 10s of SIGTERM")
	}
}

// TestRequestLog: the middleware logs method, path, status and latency
// and preserves the handler's status code.
func TestRequestLog(t *testing.T) {
	var buf strings.Builder
	logger := log.New(&buf, "", 0)
	h := requestLog(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/plan", nil))
	if w.Code != http.StatusTeapot {
		t.Fatalf("status %d, want 418", w.Code)
	}
	line := buf.String()
	if !strings.Contains(line, "GET /v1/plan 418") {
		t.Fatalf("log line %q missing method/path/status", line)
	}
}

// TestRunBadAddr: an unbindable address fails fast instead of serving.
func TestRunBadAddr(t *testing.T) {
	if err := run("256.256.256.256:99999", "", service.Config{}, nil, clusterFlags{}, time.Second, true); err == nil {
		t.Fatal("expected bind error")
	}
}

// TestParsePeers covers the -peers syntax.
func TestParsePeers(t *testing.T) {
	members, err := parsePeers("a=http://a:8080, b=http://b:8080/ ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []service.Member{
		{Name: "a", URL: "http://a:8080"},
		{Name: "b", URL: "http://b:8080"},
	}
	if len(members) != len(want) {
		t.Fatalf("parsed %d members, want %d", len(members), len(want))
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("member %d = %+v, want %+v", i, members[i], want[i])
		}
	}
	if _, err := parsePeers("just-a-name"); err == nil {
		t.Fatal("entry without = accepted")
	}
	if _, err := parsePeers(" , "); err == nil {
		t.Fatal("empty peer list accepted")
	}
}

// TestRunClusterValidation: -self without -peers (and vice versa) and
// a self missing from the peer list fail fast.
func TestRunClusterValidation(t *testing.T) {
	if err := run("127.0.0.1:0", "", service.Config{}, nil,
		clusterFlags{self: "a"}, time.Second, true); err == nil {
		t.Fatal("-self without -peers accepted")
	}
	if err := run("127.0.0.1:0", "", service.Config{}, nil,
		clusterFlags{peers: "a=http://a"}, time.Second, true); err == nil {
		t.Fatal("-peers without -self accepted")
	}
	if err := run("127.0.0.1:0", "", service.Config{}, nil,
		clusterFlags{self: "z", peers: "a=http://a,b=http://b"}, time.Second, true); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
}

// TestRunBadTable: a missing plan-table file fails fast.
func TestRunBadTable(t *testing.T) {
	if err := run("127.0.0.1:0", "", service.Config{}, []string{"/does/not/exist.json"},
		clusterFlags{}, time.Second, true); err == nil {
		t.Fatal("missing plan table accepted")
	}
}

// TestRequestLogOutcome: a response carrying the overload-disposition
// header gets an outcome= field in its log line.
func TestRequestLogOutcome(t *testing.T) {
	var buf strings.Builder
	logger := log.New(&buf, "", 0)
	h := requestLog(logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(service.OutcomeHeader, "shed")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/plan/exact", nil))
	line := buf.String()
	if !strings.Contains(line, "POST /v1/plan/exact 429") || !strings.Contains(line, "outcome=shed") {
		t.Fatalf("log line %q missing status or outcome", line)
	}
}
