// Command respatd serves resilience-pattern planning over HTTP: the
// Table 1 first-order planner, the exact-model planner, the multilevel
// hierarchy planner and the exact expected-time evaluator, behind a
// sharded LRU plan cache with request coalescing (see internal/service
// and DESIGN.md §2.4).
//
// Usage:
//
//	respatd -addr :8080
//	respatd -addr :8080 -shards 32 -cache-capacity 65536 -batch-workers 8
//	respatd -addr :8080 -cold-workers 8 -cold-queue 32 -request-timeout 30s -degraded
//	respatd -addr :8080 -self a -peers a=http://a:8080,b=http://b:8080,c=http://c:8080
//	respatd -addr :8080 -plan-table hera-pdmv.json -plan-table atlas-pdv.json
//
// Endpoints (full reference with schemas: docs/api.md):
//
//	POST   /v1/plan            {"kind":"PDMV","platform":"Hera"}
//	POST   /v1/plan/exact      same body; exact renewal-equation optimum
//	POST   /v1/plan/multilevel {"platform":"Hera","levels":3} or {"params":{...}}
//	POST   /v1/evaluate        {"pattern":{...},"platform":"Hera"}
//	POST   /v1/batch           {"requests":[{"op":"plan",...},...]}
//	POST   /v1/observe         {"session":"s1","kind":"PDMV","platform":"Hera",
//	                            "failstop":{"events":2,"exposure":86400}, ...}
//	GET    /v1/adaptive        ?session=s1 — fitted rates, counters, current plan
//	DELETE /v1/adaptive        ?session=s1 — drop the session
//	GET    /healthz            liveness
//	GET    /metrics            cache counters + per-endpoint latency quantiles (JSON)
//
// Parallelism flags follow the repo-wide convention (see DESIGN.md
// §2.3): -batch-workers bounds fan-out across independent work items
// (like -campaign-workers in cmd/experiments and cmd/respat) and
// defaults to GOMAXPROCS. Overload behaviour (docs/api.md "Overload
// semantics"): cold exact/multilevel searches run behind a bounded
// -cold-workers pool with a bounded -cold-queue wait queue (full queue
// sheds 429 + Retry-After); every request gets a -request-timeout
// deadline budget overridable per request via X-Request-Timeout
// (exceeded: 503); -degraded serves the first-order plan instead of
// failing shed or too-tight requests. Shutdown is graceful:
// SIGINT/SIGTERM stops accepting connections and drains in-flight
// requests for up to -drain-timeout.
//
// Distributed serving (DESIGN.md §2.9): -self plus -peers joins the
// daemon to a consistent-hash replica group — each cacheable plan key
// is owned by one replica, peer-owned requests forward one hop, and a
// background health checker (-health-interval) drops dead peers from
// the ring deterministically. -ring-vnodes and -ring-seed must agree
// across replicas. -plan-table (repeatable) loads precomputed plan
// tables built by cmd/plantable; in-grid /v1/plan/exact requests are
// answered by validated interpolation without entering the cold gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"respat/internal/obs"
	"respat/internal/plantable"
	"respat/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		shards       = flag.Int("shards", 16, "plan-cache shards (rounded up to a power of two)")
		capacity     = flag.Int("cache-capacity", 4096, "total cached plans across all shards")
		batchWorkers = flag.Int("batch-workers", runtime.GOMAXPROCS(0), "concurrent items per /v1/batch request (0 = GOMAXPROCS)")
		maxSessions  = flag.Int("max-sessions", 1024, "cap on live adaptive sessions (/v1/observe)")
		coldWorkers  = flag.Int("cold-workers", runtime.GOMAXPROCS(0), "concurrent cold plans: exact + multilevel searches (0 = GOMAXPROCS)")
		coldQueue    = flag.Int("cold-queue", 0, "cold plans allowed to wait for a worker before shedding with 429 (0 = 4x cold-workers)")
		reqTimeout   = flag.Duration("request-timeout", time.Minute, "default per-request deadline budget; X-Request-Timeout overrides (0 = unbounded)")
		degraded     = flag.Bool("degraded", false, "serve the first-order plan (flagged degraded) instead of failing shed or too-tight exact requests")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window")
		quiet        = flag.Bool("quiet", false, "disable per-request logging")

		self           = flag.String("self", "", "this replica's name in -peers (empty = standalone)")
		peers          = flag.String("peers", "", "replica set as name=url,name=url,... (must include -self)")
		ringVNodes     = flag.Int("ring-vnodes", 0, "virtual nodes per replica (0 = default; must agree across replicas)")
		ringSeed       = flag.Uint64("ring-seed", 1, "consistent-hash placement seed (must agree across replicas)")
		healthInterval = flag.Duration("health-interval", 5*time.Second, "peer health-check period (0 = no background checks)")

		traceSample = flag.Int("trace-sample", 64, "sample 1 in N requests into a trace (1 = all, 0 = only forwarded trace IDs)")
		traceRing   = flag.Int("trace-ring", 256, "completed traces retained for /debug/traces")
		traceSlow   = flag.Duration("trace-slow", 0, "log sampled traces slower than this (0 = no slow log)")
		traceSeed   = flag.Uint64("trace-seed", 1, "trace-sampling seed (deterministic across runs)")
		debugAddr   = flag.String("debug-addr", "", "separate listener for /debug/pprof and /debug/traces (empty = no debug listener)")
	)
	var tables tableFlags
	flag.Var(&tables, "plan-table", "precomputed plan-table file (cmd/plantable output); repeatable")
	flag.Parse()
	cfg := service.Config{
		Shards:         *shards,
		Capacity:       *capacity,
		BatchWorkers:   *batchWorkers,
		MaxSessions:    *maxSessions,
		ColdWorkers:    *coldWorkers,
		ColdQueue:      *coldQueue,
		DefaultTimeout: *reqTimeout,
		Degraded:       *degraded,
		// The tracer is always constructed: -trace-sample 0 disables the
		// sampler but forwarded trace IDs are still honoured, so a
		// cluster trace never loses a hop to one replica's configuration.
		Tracer: obs.New(obs.Config{
			SampleEvery:   *traceSample,
			Ring:          *traceRing,
			SlowThreshold: *traceSlow,
			Seed:          *traceSeed,
			Log:           log.New(os.Stderr, "respatd: ", log.LstdFlags),
		}),
	}
	cluster := clusterFlags{
		self:           *self,
		peers:          *peers,
		vnodes:         *ringVNodes,
		seed:           *ringSeed,
		healthInterval: *healthInterval,
	}
	if err := run(*addr, *debugAddr, cfg, tables, cluster, *drainTimeout, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "respatd:", err)
		os.Exit(1)
	}
}

// tableFlags collects the repeatable -plan-table flag.
type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

// clusterFlags bundles the replica-group flags.
type clusterFlags struct {
	self           string
	peers          string
	vnodes         int
	seed           uint64
	healthInterval time.Duration
}

// parsePeers turns "a=http://a:8080,b=http://b:8080" into members.
func parsePeers(s string) ([]service.Member, error) {
	var members []service.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -peers entry %q, want name=url", part)
		}
		members = append(members, service.Member{
			Name: strings.TrimSpace(name),
			URL:  strings.TrimSuffix(strings.TrimSpace(url), "/"),
		})
	}
	if len(members) == 0 {
		return nil, errors.New("-peers is empty")
	}
	return members, nil
}

func run(addr, debugAddr string, cfg service.Config, tables []string, cluster clusterFlags, drainTimeout time.Duration, quiet bool) error {
	for _, path := range tables {
		tbl, err := plantable.LoadFile(path)
		if err != nil {
			return fmt.Errorf("-plan-table %s: %w", path, err)
		}
		cfg.Tables = append(cfg.Tables, tbl)
	}
	if (cluster.self == "") != (cluster.peers == "") {
		return errors.New("-self and -peers must be given together")
	}
	logger := log.New(os.Stderr, "respatd: ", log.LstdFlags)
	svc := service.New(cfg)
	var stopHealth context.CancelFunc
	if cluster.self != "" {
		members, err := parsePeers(cluster.peers)
		if err != nil {
			return err
		}
		if err := svc.EnableCluster(service.ClusterConfig{
			Self:    cluster.self,
			Members: members,
			VNodes:  cluster.vnodes,
			Seed:    cluster.seed,
		}); err != nil {
			return err
		}
		if cluster.healthInterval > 0 {
			var hctx context.Context
			hctx, stopHealth = context.WithCancel(context.Background())
			go func() {
				tick := time.NewTicker(cluster.healthInterval)
				defer tick.Stop()
				for {
					select {
					case <-hctx.Done():
						return
					case <-tick.C:
						svc.CheckPeerHealth(hctx)
					}
				}
			}()
		}
		logger.Printf("cluster: self=%s members=%d vnodes=%d seed=%d health-interval=%v",
			cluster.self, len(members), cluster.vnodes, cluster.seed, cluster.healthInterval)
	}
	if stopHealth != nil {
		defer stopHealth()
	}
	if debugAddr != "" {
		stopDebug, err := serveDebug(debugAddr, svc, logger)
		if err != nil {
			return err
		}
		defer stopDebug()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (shards=%d capacity=%d batch-workers=%d max-sessions=%d cold-workers=%d cold-queue=%d request-timeout=%v degraded=%v plan-tables=%d)",
		ln.Addr(), cfg.Shards, cfg.Capacity, cfg.BatchWorkers, cfg.MaxSessions, cfg.ColdWorkers, cfg.ColdQueue, cfg.DefaultTimeout, cfg.Degraded, len(cfg.Tables))
	return serve(ln, svc, logger, drainTimeout, quiet)
}

// serveDebug starts the profiling/debug listener: net/http/pprof under
// /debug/pprof plus the trace ring at /debug/traces, on its own
// address so the profiling surface never shares a port (or an
// operator's firewall rules) with the public API. Returns a closer.
func serveDebug(addr string, svc *service.Service, logger *log.Logger) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-debug-addr %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", svc.DebugTraces)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("debug listener: %v", err)
		}
	}()
	logger.Printf("debug listener on %s (/debug/pprof, /debug/traces)", ln.Addr())
	return func() { srv.Close() }, nil
}

// serve runs the HTTP server on ln until SIGINT/SIGTERM, then drains
// in-flight requests for up to drainTimeout. Split from run so tests
// can inject a listener on an ephemeral port.
func serve(ln net.Listener, svc *service.Service, logger *log.Logger, drainTimeout time.Duration, quiet bool) error {
	var handler http.Handler = svc.Handler()
	if !quiet {
		handler = requestLog(logger, handler)
	}
	// The read and idle timeouts bound what a slow or stalled client can
	// hold: without them an overload test that sheds in microseconds can
	// still be pinned down by connections that never finish sending.
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down (draining up to %v)", drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained; bye")
	return nil
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// requestLog logs one line per request: method, path, status, duration,
// plus the overload disposition (outcome=shed|degraded|deadline-exceeded)
// and the trace ID (trace=...) when the service labelled them — the
// trace ID joins a log line to /debug/traces and to the error body the
// client saw.
func requestLog(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		var extra string
		if out := sw.Header().Get(service.OutcomeHeader); out != "" {
			extra += " outcome=" + out
		}
		if id := sw.Header().Get(obs.TraceHeader); id != "" {
			extra += " trace=" + id
		}
		logger.Printf("%s %s %d %v%s", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond), extra)
	})
}
