// Command experiments regenerates every table and figure of the
// paper's evaluation section into an output directory, as aligned-text
// and CSV files. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	experiments -out results -mode fast            # minutes
//	experiments -out results -mode full            # paper scale (hours)
//	experiments -out results -only t1,f6,f9
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"respat/internal/core"
	"respat/internal/harness"
	"respat/internal/platform"
	"respat/internal/report"
	"respat/internal/viz"
)

func main() {
	var (
		out  = flag.String("out", "results", "output directory")
		mode = flag.String("mode", "fast", "campaign size: fast | medium | full")
		only = flag.String("only", "", "comma-separated experiment ids (t1,t2,f6,f7,f8,f9,ablation); empty = all")
	)
	flag.Parse()
	if err := run(*out, *mode, *only); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(out, mode, only string) error {
	var opts harness.Options
	switch mode {
	case "fast":
		opts = harness.Fast()
	case "medium":
		opts = harness.Medium()
	case "full":
		opts = harness.Full()
	default:
		return fmt.Errorf("unknown mode %q (fast|medium|full)", mode)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	want := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	if sel("t1") {
		fmt.Println("== T1: Table 1 instantiation ==")
		rows, err := harness.Table1(platform.Table2())
		if err != nil {
			return err
		}
		if err := emit(out, "table1", harness.RenderTable1(rows)); err != nil {
			return err
		}
	}
	if sel("t2") {
		fmt.Println("== T2: Table 2 platforms ==")
		if err := emit(out, "table2", harness.RenderTable2(harness.Table2())); err != nil {
			return err
		}
	}
	if sel("f6") {
		fmt.Println("== F6: patterns on real platforms ==")
		rows, err := harness.Fig6(platform.Table2(), opts)
		if err != nil {
			return err
		}
		if err := emit(out, "fig6", harness.RenderFig6(rows)); err != nil {
			return err
		}
		if err := emitChart(out, "fig6a_hera_plot", harness.Fig6Chart("Hera", rows)); err != nil {
			return err
		}
	}
	both := []core.Kind{core.PD, core.PDMV}
	nodes := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18}
	if sel("f7") {
		fmt.Println("== F7: weak scaling, CD=300 CM=15 ==")
		rows, err := harness.WeakScaling(nodes, 300, 15, both, opts)
		if err != nil {
			return err
		}
		if err := emit(out, "fig7", harness.RenderWeakScaling("Figure 7: weak scaling (CD=300, CM=15)", rows)); err != nil {
			return err
		}
		if err := emitChart(out, "fig7a_plot", harness.WeakScalingChart("Figure 7a", rows)); err != nil {
			return err
		}
	}
	if sel("f8") {
		fmt.Println("== F8: weak scaling, CD=90 CM=15 ==")
		rows, err := harness.WeakScaling(nodes, 90, 15, both, opts)
		if err != nil {
			return err
		}
		if err := emit(out, "fig8", harness.RenderWeakScaling("Figure 8: weak scaling (CD=90, CM=15)", rows)); err != nil {
			return err
		}
		if err := emitChart(out, "fig8a_plot", harness.WeakScalingChart("Figure 8a", rows)); err != nil {
			return err
		}
	}
	if sel("f9") {
		const sweepNodes = 100000 // §6.4: Hera scaled to 10^5 nodes
		factors := []float64{0.2, 0.5, 0.8, 1.1, 1.4, 1.7, 2.0}
		if mode == "full" {
			factors = []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
		}
		fmt.Println("== F9a-c: overhead surfaces over (lambda_f, lambda_s) ==")
		surf, err := harness.RateSweep(sweepNodes, harness.Grid(factors), both, opts)
		if err != nil {
			return err
		}
		if err := emit(out, "fig9_surface", harness.RenderRateSweep("Figure 9a-c: overhead surfaces (Hera x 1e5 nodes)", surf)); err != nil {
			return err
		}
		fmt.Println("== F9d-g: sweep over lambda_f ==")
		fs, err := harness.RateSweep(sweepNodes, harness.AxisFail(factors), both, opts)
		if err != nil {
			return err
		}
		if err := emit(out, "fig9_fail", harness.RenderRateSweep("Figure 9d-g: lambda_f sweep (lambda_s nominal)", fs)); err != nil {
			return err
		}
		if err := emitChart(out, "fig9d_plot", harness.RateSweepPeriodChart("Figure 9d", fs, false)); err != nil {
			return err
		}
		fmt.Println("== F9h-k: sweep over lambda_s ==")
		ss, err := harness.RateSweep(sweepNodes, harness.AxisSilent(factors), both, opts)
		if err != nil {
			return err
		}
		if err := emit(out, "fig9_silent", harness.RenderRateSweep("Figure 9h-k: lambda_s sweep (lambda_f nominal)", ss)); err != nil {
			return err
		}
		if err := emitChart(out, "fig9h_plot", harness.RateSweepPeriodChart("Figure 9h", ss, true)); err != nil {
			return err
		}
		if err := emitChart(out, "fig9_overhead_plot", harness.RateSweepOverheadChart("Figure 9a/9b slice", ss, true)); err != nil {
			return err
		}
	}
	if sel("ablation") {
		fmt.Println("== Ablation: first-order vs exact-model plans ==")
		rows, err := harness.Ablation(platform.Table2(), core.Kinds())
		if err != nil {
			return err
		}
		if err := emit(out, "ablation", harness.RenderAblation(rows)); err != nil {
			return err
		}
	}
	fmt.Println("wrote", out)
	return nil
}

// emitChart writes an ASCII chart under dir and echoes it.
func emitChart(dir, name string, c *viz.Chart) error {
	f, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Render(f); err != nil {
		return err
	}
	return c.Render(os.Stdout)
}

// emit writes the table as .txt and .csv under dir and echoes it.
func emit(dir, name string, t *report.Table) error {
	txt, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := t.Render(txt); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer csvf.Close()
	if err := t.WriteCSV(csvf); err != nil {
		return err
	}
	return t.Render(os.Stdout)
}
