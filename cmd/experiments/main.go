// Command experiments regenerates every table and figure of the
// paper's evaluation section into an output directory, as aligned-text
// and CSV files. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	experiments -out results -mode fast            # minutes
//	experiments -out results -mode full            # paper scale (hours)
//	experiments -out results -only t1,f6,f9
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Simulation campaigns fan their (platform, family, sweep-point) cells
// over -campaign-workers goroutines (default GOMAXPROCS) with -workers
// simulation goroutines inside each cell (default 1); results are
// bit-identical for any worker split. Each artefact logs its wall time
// so regressions are diagnosable without editing code, and
// -cpuprofile/-memprofile capture pprof profiles of the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"respat/internal/core"
	"respat/internal/harness"
	"respat/internal/platform"
	"respat/internal/report"
	"respat/internal/viz"
)

// cli groups the command-line configuration of one invocation.
type cli struct {
	out             string
	mode            string
	only            string
	campaignWorkers int
	simWorkers      int
	cpuProfile      string
	memProfile      string
}

func main() {
	var c cli
	flag.StringVar(&c.out, "out", "results", "output directory")
	flag.StringVar(&c.mode, "mode", "fast", "campaign size: fast | medium | full")
	flag.StringVar(&c.only, "only", "", "comma-separated experiment ids (t1,t2,f6,f7,f8,f9,ablation); empty = all")
	flag.IntVar(&c.campaignWorkers, "campaign-workers", runtime.GOMAXPROCS(0), "campaign cells simulated concurrently")
	flag.IntVar(&c.simWorkers, "workers", 1, "simulation goroutines per campaign cell (0 = GOMAXPROCS)")
	flag.StringVar(&c.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&c.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(c cli) error {
	var opts harness.Options
	switch c.mode {
	case "fast":
		opts = harness.Fast()
	case "medium":
		opts = harness.Medium()
	case "full":
		opts = harness.Full()
	default:
		return fmt.Errorf("unknown mode %q (fast|medium|full)", c.mode)
	}
	opts.CampaignWorkers = c.campaignWorkers
	opts.Workers = c.simWorkers

	if c.cpuProfile != "" {
		f, err := os.Create(c.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if c.memProfile != "" {
		defer func() {
			f, err := os.Create(c.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	if err := os.MkdirAll(c.out, 0o755); err != nil {
		return err
	}
	want := map[string]bool{}
	if c.only != "" {
		for _, id := range strings.Split(c.only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	// section runs one artefact under a wall-time log line.
	section := func(id, title string, body func() error) error {
		if !sel(id) {
			return nil
		}
		fmt.Printf("== %s: %s ==\n", strings.ToUpper(id), title)
		start := time.Now()
		if err := body(); err != nil {
			return err
		}
		fmt.Printf("-- %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if err := section("t1", "Table 1 instantiation", func() error {
		rows, err := harness.Table1(platform.Table2())
		if err != nil {
			return err
		}
		return emit(c.out, "table1", harness.RenderTable1(rows))
	}); err != nil {
		return err
	}
	if err := section("t2", "Table 2 platforms", func() error {
		return emit(c.out, "table2", harness.RenderTable2(harness.Table2()))
	}); err != nil {
		return err
	}
	if err := section("f6", "patterns on real platforms", func() error {
		rows, err := harness.Fig6(platform.Table2(), opts)
		if err != nil {
			return err
		}
		if err := emit(c.out, "fig6", harness.RenderFig6(rows)); err != nil {
			return err
		}
		return emitChart(c.out, "fig6a_hera_plot", harness.Fig6Chart("Hera", rows))
	}); err != nil {
		return err
	}
	both := []core.Kind{core.PD, core.PDMV}
	nodes := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18}
	if err := section("f7", "weak scaling, CD=300 CM=15", func() error {
		rows, err := harness.WeakScaling(nodes, 300, 15, both, opts)
		if err != nil {
			return err
		}
		if err := emit(c.out, "fig7", harness.RenderWeakScaling("Figure 7: weak scaling (CD=300, CM=15)", rows)); err != nil {
			return err
		}
		return emitChart(c.out, "fig7a_plot", harness.WeakScalingChart("Figure 7a", rows))
	}); err != nil {
		return err
	}
	if err := section("f8", "weak scaling, CD=90 CM=15", func() error {
		rows, err := harness.WeakScaling(nodes, 90, 15, both, opts)
		if err != nil {
			return err
		}
		if err := emit(c.out, "fig8", harness.RenderWeakScaling("Figure 8: weak scaling (CD=90, CM=15)", rows)); err != nil {
			return err
		}
		return emitChart(c.out, "fig8a_plot", harness.WeakScalingChart("Figure 8a", rows))
	}); err != nil {
		return err
	}
	if err := section("f9", "error-rate sweeps (Hera x 1e5 nodes)", func() error {
		const sweepNodes = 100000 // §6.4: Hera scaled to 10^5 nodes
		factors := []float64{0.2, 0.5, 0.8, 1.1, 1.4, 1.7, 2.0}
		if c.mode == "full" {
			factors = []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
		}
		surf, err := harness.RateSweep(sweepNodes, harness.Grid(factors), both, opts)
		if err != nil {
			return err
		}
		if err := emit(c.out, "fig9_surface", harness.RenderRateSweep("Figure 9a-c: overhead surfaces (Hera x 1e5 nodes)", surf)); err != nil {
			return err
		}
		fs, err := harness.RateSweep(sweepNodes, harness.AxisFail(factors), both, opts)
		if err != nil {
			return err
		}
		if err := emit(c.out, "fig9_fail", harness.RenderRateSweep("Figure 9d-g: lambda_f sweep (lambda_s nominal)", fs)); err != nil {
			return err
		}
		if err := emitChart(c.out, "fig9d_plot", harness.RateSweepPeriodChart("Figure 9d", fs, false)); err != nil {
			return err
		}
		ss, err := harness.RateSweep(sweepNodes, harness.AxisSilent(factors), both, opts)
		if err != nil {
			return err
		}
		if err := emit(c.out, "fig9_silent", harness.RenderRateSweep("Figure 9h-k: lambda_s sweep (lambda_f nominal)", ss)); err != nil {
			return err
		}
		if err := emitChart(c.out, "fig9h_plot", harness.RateSweepPeriodChart("Figure 9h", ss, true)); err != nil {
			return err
		}
		return emitChart(c.out, "fig9_overhead_plot", harness.RateSweepOverheadChart("Figure 9a/9b slice", ss, true))
	}); err != nil {
		return err
	}
	if err := section("ablation", "first-order vs exact-model plans", func() error {
		rows, err := harness.Ablation(platform.Table2(), core.Kinds(), opts.CampaignWorkers)
		if err != nil {
			return err
		}
		return emit(c.out, "ablation", harness.RenderAblation(rows))
	}); err != nil {
		return err
	}
	fmt.Println("wrote", c.out)
	return nil
}

// emitChart writes an ASCII chart under dir and echoes it.
func emitChart(dir, name string, c *viz.Chart) error {
	f, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Render(f); err != nil {
		return err
	}
	return c.Render(os.Stdout)
}

// emit writes the table as .txt and .csv under dir and echoes it.
func emit(dir, name string, t *report.Table) error {
	txt, err := os.Create(filepath.Join(dir, name+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := t.Render(txt); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer csvf.Close()
	if err := t.WriteCSV(csvf); err != nil {
		return err
	}
	return t.Render(os.Stdout)
}
