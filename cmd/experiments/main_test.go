package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunAnalyticExperiments(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "fast", "t1,t2,ablation"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table1.txt", "table1.csv", "table2.txt", "ablation.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
}

func TestRunSimulatedExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "fast", "f6"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty fig6.txt")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6a_hera_plot.txt")); err != nil {
		t.Errorf("missing chart: %v", err)
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run(t.TempDir(), "warp", ""); err == nil {
		t.Error("unknown mode should fail")
	}
}

func TestRunUnknownSelectionIsNoop(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "fast", "nothing-matches"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("unexpected outputs: %v", entries)
	}
}
