package main

import (
	"os"
	"path/filepath"
	"testing"
)

// fastCli returns a small-campaign invocation writing into dir.
func fastCli(dir, only string) cli {
	return cli{out: dir, mode: "fast", only: only, campaignWorkers: 2, simWorkers: 1}
}

func TestRunAnalyticExperiments(t *testing.T) {
	dir := t.TempDir()
	if err := run(fastCli(dir, "t1,t2,ablation")); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table1.txt", "table1.csv", "table2.txt", "ablation.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
}

func TestRunSimulatedExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run(fastCli(dir, "f6")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty fig6.txt")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6a_hera_plot.txt")); err != nil {
		t.Errorf("missing chart: %v", err)
	}
}

func TestRunUnknownMode(t *testing.T) {
	c := fastCli(t.TempDir(), "")
	c.mode = "warp"
	if err := run(c); err == nil {
		t.Error("unknown mode should fail")
	}
}

func TestRunUnknownSelectionIsNoop(t *testing.T) {
	dir := t.TempDir()
	if err := run(fastCli(dir, "nothing-matches")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("unexpected outputs: %v", entries)
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	c := fastCli(dir, "t2")
	c.cpuProfile = filepath.Join(dir, "cpu.pprof")
	c.memProfile = filepath.Join(dir, "mem.pprof")
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	// The CPU profile is finalised by the deferred StopCPUProfile, so
	// only its existence is checked here; the heap profile must be
	// non-empty.
	if _, err := os.Stat(c.cpuProfile); err != nil {
		t.Errorf("missing cpu profile: %v", err)
	}
	info, err := os.Stat(c.memProfile)
	if err != nil {
		t.Fatalf("missing mem profile: %v", err)
	}
	if info.Size() == 0 {
		t.Error("empty mem profile")
	}
}
