// Command fleet runs the deterministic fleet-scale discrete-event
// simulator (internal/fleet): open-loop job arrivals against a shared
// cluster, per-job resilience plans from the warm planners, per-job
// fault injection on the internal/sim exposure clocks, and SLO metrics
// (queue-delay / overhead / sojourn p50-p90-p99, utilization, event
// totals).
//
// Usage:
//
//	fleet -nodes 64 -rate 2.0 -num-jobs 100000 -seed 42
//	fleet -platform Atlas -mode multilevel -rate 0.5 -num-jobs 10000 -format json
//	fleet -trace examples/fleet/trace.txt -nodes 32 -format json
//
// Two runs with the same seed produce byte-identical -format json
// reports for any -workers value (enforced in CI). The job-trace
// schema is documented in docs/api.md; rate is in jobs per second.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"respat/internal/core"
	"respat/internal/fleet"
	"respat/internal/platform"
)

func main() {
	var (
		platName   = flag.String("platform", "Hera", "built-in platform name (per-node rates and costs)")
		nodes      = flag.Int("nodes", 0, "cluster node count (0 = platform's own)")
		mode       = flag.String("mode", "pattern", "resilience mode: pattern | twolevel | multilevel")
		family     = flag.String("family", "PDMV", "pattern family for -mode pattern")
		levels     = flag.Int("levels", 3, "hierarchy depth for -mode multilevel")
		rate       = flag.Float64("rate", 1.0, "Poisson arrival rate in jobs/second")
		numJobs    = flag.Int("num-jobs", 10000, "number of synthesized jobs")
		jobWork    = flag.Float64("job-work", 86400, "mean job work in seconds")
		workSpread = flag.Float64("work-spread", 1, "log-uniform work spread factor (>= 1)")
		jobNodes   = flag.Int("job-nodes", 0, "nodes per job (0 = power-of-two mix up to nodes/2)")
		trace      = flag.String("trace", "", "job-trace file overriding synthesis (see docs/api.md; - = stdin)")
		backfill   = flag.Bool("backfill", true, "conservative backfill behind the FIFO head")
		seed       = flag.Uint64("seed", 1, "campaign seed")
		workers    = flag.Int("workers", 0, "job-simulation goroutines (0 = GOMAXPROCS); never changes results")
		format     = flag.String("format", "table", "output format: table | json")
	)
	flag.Parse()
	if err := run(os.Stdout, *platName, *nodes, *mode, *family, *levels, *rate,
		*numJobs, *jobWork, *workSpread, *jobNodes, *trace, *backfill, *seed, *workers, *format); err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, platName string, nodes int, mode, family string, levels int,
	rate float64, numJobs int, jobWork, workSpread float64, jobNodes int,
	trace string, backfill bool, seed uint64, workers int, format string) error {
	p, err := platform.ByName(platName)
	if err != nil {
		return err
	}
	m, err := fleet.ParseMode(mode)
	if err != nil {
		return err
	}
	k, err := core.ParseKind(family)
	if err != nil {
		return err
	}
	cfg := fleet.Config{
		Platform:   p,
		Nodes:      nodes,
		Mode:       m,
		Family:     k,
		Levels:     levels,
		NumJobs:    numJobs,
		Rate:       rate,
		JobWork:    jobWork,
		WorkSpread: workSpread,
		JobNodes:   jobNodes,
		Backfill:   backfill,
		Seed:       seed,
		Workers:    workers,
	}
	if trace != "" {
		r := io.Reader(os.Stdin)
		if trace != "-" {
			f, err := os.Open(trace)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		jobs, err := fleet.ParseTrace(r, m)
		if err != nil {
			return err
		}
		cfg.Trace = jobs
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		return err
	}
	switch format {
	case "json":
		b, err := res.JSON()
		if err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	case "table":
		return res.WriteTable(w)
	default:
		return fmt.Errorf("unknown format %q (have table, json)", format)
	}
}
