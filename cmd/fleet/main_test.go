package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runSmall(t *testing.T, trace, format string) string {
	t.Helper()
	var buf bytes.Buffer
	err := run(&buf, "Hera", 16, "pattern", "PDMV", 3, 0.001,
		50, 36000, 2, 0, trace, true, 5, 0, format)
	if err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunTable(t *testing.T) {
	out := runSmall(t, "", "table")
	for _, want := range []string{"fleet", "utilization", "overhead", "pattern"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	out := runSmall(t, "", "json")
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if doc["jobs"] != float64(50) {
		t.Errorf("jobs = %v, want 50", doc["jobs"])
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("JSON report does not end in a newline")
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, []byte("0 30000 4\n600 30000 4 twolevel\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runSmall(t, path, "json")
	var doc struct {
		Jobs  int `json:"jobs"`
		Plans []struct {
			Mode string `json:"mode"`
		} `json:"plans"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Jobs != 2 || len(doc.Plans) != 2 {
		t.Fatalf("jobs = %d, plans = %+v; want 2 jobs across 2 plans", doc.Jobs, doc.Plans)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	for name, call := range map[string]func() error{
		"bad platform": func() error {
			return run(&buf, "Nope", 16, "pattern", "PDMV", 3, 1, 10, 100, 1, 0, "", true, 1, 0, "table")
		},
		"bad mode": func() error {
			return run(&buf, "Hera", 16, "daly", "PDMV", 3, 1, 10, 100, 1, 0, "", true, 1, 0, "table")
		},
		"bad family": func() error {
			return run(&buf, "Hera", 16, "pattern", "NOPE", 3, 1, 10, 100, 1, 0, "", true, 1, 0, "table")
		},
		"bad format": func() error {
			return run(&buf, "Hera", 16, "pattern", "PDMV", 3, 1, 10, 100, 1, 0, "", true, 1, 0, "yaml")
		},
		"missing trace": func() error {
			return run(&buf, "Hera", 16, "pattern", "PDMV", 3, 1, 10, 100, 1, 0, "/does/not/exist", true, 1, 0, "table")
		},
		"bad config": func() error {
			return run(&buf, "Hera", 16, "pattern", "PDMV", 3, -1, 10, 100, 1, 0, "", true, 1, 0, "table")
		},
	} {
		if err := call(); err == nil {
			t.Errorf("%s: run succeeded", name)
		}
	}
}
