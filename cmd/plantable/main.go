// Command plantable builds a precomputed plan table
// (internal/plantable): a grid of exact optimal plans over
// (fail-stop rate, silent rate, checkpoint cost, recovery cost)
// around a platform's operating point, validated so that multilinear
// interpolation anywhere inside the grid stays within the requested
// error bound of exact planning. respatd loads the table at startup
// (-plan-table) and answers in-grid /v1/plan/exact requests by
// interpolation, without entering the cold-plan gate.
//
// Usage:
//
//	plantable -platform Hera -kind PDMV -out hera-pdmv.json
//	plantable -platform Atlas -kind PDV -rate-span 2 -rate-points 5 -err-bound 0.02
//
// The defaults (7x7x5x5 over x2 rate and x1.5 cost spans, 1% bound)
// validate for every Table 2 platform and pattern family; a sparser
// grid that cannot honor the bound fails the build instead of
// shipping bad plans.
//
// The grid spans each axis geometrically: center/span .. center*span
// with the given number of points. Building runs one exact
// optimization per grid point (parallel across -workers), then
// validates the bound on a seeded in-grid sample; it fails loudly if
// the grid is too coarse for the bound.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"respat/internal/core"
	"respat/internal/plantable"
	"respat/internal/platform"
)

func main() {
	var (
		platName   = flag.String("platform", "Hera", "built-in platform name (grid center)")
		kind       = flag.String("kind", "PDMV", "pattern family: PD | PDV | PDMV")
		out        = flag.String("out", "", "output file (default stdout)")
		rateSpan   = flag.Float64("rate-span", 2, "rate axes span factor: center/span .. center*span")
		ratePoints = flag.Int("rate-points", 7, "points per rate axis")
		costSpan   = flag.Float64("cost-span", 1.5, "cost axes span factor")
		costPoints = flag.Int("cost-points", 5, "points per cost axis")
		errBound   = flag.Float64("err-bound", 0.01, "max relative interpolation error allowed")
		samples    = flag.Int("samples", 32, "validation sample count")
		seed       = flag.Uint64("seed", 1, "validation sampling seed")
		workers    = flag.Int("workers", 0, "build goroutines (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(os.Stdout, *platName, *kind, *out, *rateSpan, *costSpan,
		*ratePoints, *costPoints, *errBound, *samples, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "plantable:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, platName, kindName, out string, rateSpan, costSpan float64,
	ratePoints, costPoints int, errBound float64, samples int, seed uint64, workers int) error {
	kind, err := core.ParseKind(kindName)
	if err != nil {
		return err
	}
	p, err := platform.ByName(platName)
	if err != nil {
		return err
	}
	failStop, err := plantable.AxisAround(p.Rates.FailStop, rateSpan, ratePoints)
	if err != nil {
		return fmt.Errorf("fail-stop axis: %w", err)
	}
	silent, err := plantable.AxisAround(p.Rates.Silent, rateSpan, ratePoints)
	if err != nil {
		return fmt.Errorf("silent axis: %w", err)
	}
	ckpt, err := plantable.AxisAround(p.Costs.DiskCkpt, costSpan, costPoints)
	if err != nil {
		return fmt.Errorf("checkpoint axis: %w", err)
	}
	rec, err := plantable.AxisAround(p.Costs.DiskRec, costSpan, costPoints)
	if err != nil {
		return fmt.Errorf("recovery axis: %w", err)
	}
	tbl, err := plantable.Build(plantable.BuildSpec{
		Kind:     kind,
		Base:     p.Costs,
		FailStop: failStop,
		Silent:   silent,
		Ckpt:     ckpt,
		Rec:      rec,
		ErrBound: errBound,
		Samples:  samples,
		Seed:     seed,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tbl.Save(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "plantable: %d entries (%dx%dx%dx%d), max sample error %.2e (bound %.2e)\n",
		len(tbl.Entries), len(failStop), len(silent), len(ckpt), len(rec), tbl.SampleErr, tbl.ErrBound)
	return nil
}
