package main

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"respat/internal/plantable"
	"respat/internal/platform"
)

// TestBuildSaveLoad runs the generator end to end: build a small grid
// around Hera, write it to disk, and load it back the way respatd
// does at startup (-plan-table).
func TestBuildSaveLoad(t *testing.T) {
	out := filepath.Join(t.TempDir(), "hera.json")
	err := run(io.Discard, "Hera", "PDMV", out, 1.5, 1.3, 3, 2, 0.05, 16, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := plantable.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	hera, err := platform.ByName("Hera")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(tbl.Kind, hera.Costs, hera.Rates); !ok {
		t.Fatal("built table misses its own grid center")
	}
}

// TestRunRejectsBadInput covers the argument errors.
func TestRunRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "Hera", "XYZ", "", 2, 1.5, 3, 2, 0.01, 8, 1, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run(&buf, "NoSuchPlatform", "PDMV", "", 2, 1.5, 3, 2, 0.01, 8, 1, 0); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if err := run(&buf, "Hera", "PDMV", "", 1, 1.5, 3, 2, 0.01, 8, 1, 0); err == nil {
		t.Fatal("span 1 with multiple points accepted")
	}
}
