package main

import "testing"

func TestRunBuiltinPlatform(t *testing.T) {
	if err := run("Hera", "all", 0, 0, 0, 0, 0, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFamily(t *testing.T) {
	if err := run("Coastal", "PDMV", 0, 0, 0, 0, 0, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomParameters(t *testing.T) {
	if err := run("", "PD", 300, 15.4, 9.46e-7, 3.38e-6, 0.8, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithExactAblation(t *testing.T) {
	if err := run("Hera", "PDM", 0, 0, 0, 0, 0, true, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunTwoLevelMode(t *testing.T) {
	if err := runTwoLevel(9.46e-6, 0.8, 15.4, 300); err != nil {
		t.Fatal(err)
	}
	if err := runTwoLevel(0, 0.8, 15.4, 300); err == nil {
		t.Error("zero rate should fail (no finite optimum)")
	}
}

func TestRunMultilevelMode(t *testing.T) {
	if err := runMultilevel("Hera", 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := runMultilevel("", 2, 1); err == nil {
		t.Error("missing platform should fail")
	}
	if err := runMultilevel("Summit", 2, 1); err == nil {
		t.Error("unknown platform should fail")
	}
	if err := runMultilevel("Hera", 99, 1); err == nil {
		t.Error("hierarchy depth beyond MaxLevels should fail")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("Summit", "all", 0, 0, 0, 0, 0, false, 0); err == nil {
		t.Error("unknown platform should fail")
	}
	if err := run("Hera", "PDQ", 0, 0, 0, 0, 0, false, 0); err == nil {
		t.Error("unknown family should fail")
	}
	if err := run("", "PD", 300, 15, -1, 1e-6, 0.8, false, 0); err == nil {
		t.Error("negative rate should fail")
	}
}
