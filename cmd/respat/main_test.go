package main

import "testing"

func TestRunBuiltinPlatform(t *testing.T) {
	if err := run("Hera", "all", 0, 0, 0, 0, 0, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFamily(t *testing.T) {
	if err := run("Coastal", "PDMV", 0, 0, 0, 0, 0, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomParameters(t *testing.T) {
	if err := run("", "PD", 300, 15.4, 9.46e-7, 3.38e-6, 0.8, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithExactAblation(t *testing.T) {
	if err := run("Hera", "PDM", 0, 0, 0, 0, 0, true, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("Summit", "all", 0, 0, 0, 0, 0, false, 0); err == nil {
		t.Error("unknown platform should fail")
	}
	if err := run("Hera", "PDQ", 0, 0, 0, 0, 0, false, 0); err == nil {
		t.Error("unknown family should fail")
	}
	if err := run("", "PD", 300, 15, -1, 1e-6, 0.8, false, 0); err == nil {
		t.Error("negative rate should fail")
	}
}
