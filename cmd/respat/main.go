// Command respat prints the optimal resilience pattern(s) of Table 1
// for a platform, either one of the built-in Table 2 machines or
// custom parameters, and — via -mode — the related-work comparators:
// the classic two-level fail-stop protocol (§4.1 remark) and the
// multilevel hierarchy + silent-error verification patterns.
//
// Usage:
//
//	respat -platform Hera                  # all six families on Hera
//	respat -platform Coastal -pattern PDMV # one family
//	respat -cd 300 -cm 15 -lf 9.46e-7 -ls 3.38e-6
//	respat -platform Hera -exact -campaign-workers 4
//	respat -mode twolevel -lf 9.46e-6 -q 0.8 -cl 15.4 -cd 300
//	respat -mode multilevel -platform Hera -levels 3
//
// With -exact, the per-family exact-model searches fan over
// -campaign-workers goroutines (default GOMAXPROCS), the same
// convention as cmd/experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"respat"
	"respat/internal/analytic"
	"respat/internal/harness"
	"respat/internal/platform"
	"respat/internal/report"
)

func main() {
	var (
		mode     = flag.String("mode", "plan", "plan (Table 1 families), twolevel (§4.1 fail-stop comparator) or multilevel (hierarchy study)")
		platName = flag.String("platform", "", "built-in platform name (Hera, Atlas, Coastal, Coastal-SSD); overrides the cost/rate flags")
		pattern  = flag.String("pattern", "all", "pattern family (PD, PDV*, PDV, PDM, PDMV*, PDMV) or 'all'")
		cd       = flag.Float64("cd", 300, "disk checkpoint cost CD (s)")
		cm       = flag.Float64("cm", 15.4, "memory checkpoint cost CM (s); V*=CM, V=CM/100, RD=CD, RM=CM")
		lf       = flag.Float64("lf", 9.46e-7, "fail-stop error rate lambda_f (/s); the total rate in -mode twolevel")
		ls       = flag.Float64("ls", 3.38e-6, "silent error rate lambda_s (/s)")
		recall   = flag.Float64("recall", 0.8, "partial verification recall r")
		exact    = flag.Bool("exact", false, "also compute the exact-model optimum (slower)")
		// Two-level comparator flags (-mode twolevel): RL=CL, RD=CD.
		localShare = flag.Float64("q", 0.8, "twolevel: probability an error is local")
		localCkpt  = flag.Float64("cl", 15.4, "twolevel: local checkpoint cost CL (s); RL=CL")
		// Multilevel study flag (-mode multilevel).
		levels = flag.Int("levels", 0, "multilevel: hierarchy depth L (0 compares L=1..3)")
		// Parallelism flags follow the repo-wide convention (DESIGN.md
		// §2.3): -campaign-workers fans independent (platform, family)
		// cells over a bounded pool and defaults to GOMAXPROCS.
		campaignWorkers = flag.Int("campaign-workers", runtime.GOMAXPROCS(0), "exact-ablation / multilevel cells computed concurrently (0 = GOMAXPROCS); matches cmd/experiments -campaign-workers")
	)
	flag.Parse()
	var err error
	switch *mode {
	case "plan":
		err = run(*platName, *pattern, *cd, *cm, *lf, *ls, *recall, *exact, *campaignWorkers)
	case "twolevel":
		err = runTwoLevel(*lf, *localShare, *localCkpt, *cd)
	case "multilevel":
		err = runMultilevel(*platName, *levels, *campaignWorkers)
	default:
		err = fmt.Errorf("unknown mode %q (plan, twolevel, multilevel)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "respat:", err)
		os.Exit(1)
	}
}

func run(platName, pattern string, cd, cm, lf, ls, recall float64, exact bool, campaignWorkers int) error {
	if campaignWorkers <= 0 {
		campaignWorkers = runtime.GOMAXPROCS(0)
	}
	var costs respat.Costs
	var rates respat.Rates
	name := "custom"
	if platName != "" {
		p, err := platform.ByName(platName)
		if err != nil {
			return err
		}
		costs, rates, name = p.Costs, p.Rates, p.Name
	} else {
		costs = respat.Costs{
			DiskCkpt: cd, MemCkpt: cm, DiskRec: cd, MemRec: cm,
			GuarVer: cm, PartVer: cm / 100, Recall: recall,
		}
		rates = respat.Rates{FailStop: lf, Silent: ls}
	}

	kinds := respat.Kinds()
	if pattern != "all" {
		k, err := respat.ParseKind(pattern)
		if err != nil {
			return err
		}
		kinds = []respat.Kind{k}
	}

	t := report.New(fmt.Sprintf("Optimal patterns for %s (MTBF %.1f h)", name, rates.MTBF()/3600),
		"pattern", "W* (s)", "W* (h)", "n*", "m*", "H* (pred)", "H* (closed form)")
	for _, k := range kinds {
		plan, err := respat.Optimal(k, costs, rates)
		if err != nil {
			return err
		}
		t.AddRow(k.String(), report.Fixed(plan.W, 1), report.Fixed(plan.W/3600, 2),
			report.I(plan.N), report.I(plan.M),
			report.Pct(plan.Overhead, 3),
			report.Pct(analytic.TableOverhead(k, costs, rates), 3))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	if exact {
		rows, err := harness.Ablation([]platform.Platform{{
			Name: name, Nodes: 1, Costs: costs, Rates: rates,
		}}, kinds, campaignWorkers)
		if err != nil {
			return err
		}
		fmt.Println()
		return harness.RenderAblation(rows).Render(os.Stdout)
	}
	return nil
}

// runTwoLevel optimises the §4.1 two-level fail-stop comparator and
// its rate-matched disk-only baseline.
func runTwoLevel(lambda, q, cl, cd float64) error {
	cmp, err := respat.CompareTwoLevel(respat.TwoLevelParams{
		Lambda: lambda, LocalShare: q,
		LocalCkpt: cl, DiskCkpt: cd, LocalRec: cl, DiskRec: cd,
	})
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Two-level comparator (lambda=%.3g/s, q=%.2f, CL=%g, CD=%g)", lambda, q, cl, cd),
		"protocol", "W* (s)", "n*", "H*")
	t.AddRow("two-level", report.Fixed(cmp.TwoLevel.W, 1), report.I(cmp.TwoLevel.N), report.Pct(cmp.TwoLevel.Overhead, 3))
	t.AddRow("disk-only", report.Fixed(cmp.SingleLevel.W, 1), report.I(cmp.SingleLevel.N), report.Pct(cmp.SingleLevel.Overhead, 3))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nlocal level gain: %.1f%% overhead reduction\n", 100*cmp.Gain)
	return nil
}

// runMultilevel prints the multilevel hierarchy study for a platform:
// the optimal L-level pattern per depth, simulation-validated.
func runMultilevel(platName string, levels, campaignWorkers int) error {
	if platName == "" {
		return fmt.Errorf("-mode multilevel needs -platform")
	}
	p, err := platform.ByName(platName)
	if err != nil {
		return err
	}
	depths := []int{1, 2, 3}
	if levels != 0 {
		depths = []int{levels}
	}
	o := harness.Fast()
	o.CampaignWorkers = campaignWorkers
	o.Workers = 1
	rows, err := harness.MultilevelStudy([]platform.Platform{p}, depths, o)
	if err != nil {
		return err
	}
	if err := harness.RenderMultilevelStudy(rows).Render(os.Stdout); err != nil {
		return err
	}
	// Planner observability: one line per cell, so the cold-path perf
	// claims (candidates pruned, leaves searched, wall time) can be
	// checked without a profiler.
	for _, row := range rows {
		st := row.PlanStats
		fmt.Printf("planner %s L=%d: %v (candidates=%d pruned=%d screened=%d evaluated=%d leaves=%d workers=%d fallback=%v)\n",
			row.Platform, row.Levels, row.PlanTime.Round(10*time.Microsecond),
			st.Candidates, st.Pruned, st.Screened, st.Evaluated, st.Leaves, st.Workers, st.Fallback)
	}
	return nil
}
