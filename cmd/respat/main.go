// Command respat prints the optimal resilience pattern(s) of Table 1
// for a platform, either one of the built-in Table 2 machines or
// custom parameters.
//
// Usage:
//
//	respat -platform Hera                  # all six families on Hera
//	respat -platform Coastal -pattern PDMV # one family
//	respat -cd 300 -cm 15 -lf 9.46e-7 -ls 3.38e-6
//	respat -platform Hera -exact -campaign-workers 4
//
// With -exact, the per-family exact-model searches fan over
// -campaign-workers goroutines (default GOMAXPROCS), the same
// convention as cmd/experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"respat"
	"respat/internal/analytic"
	"respat/internal/harness"
	"respat/internal/platform"
	"respat/internal/report"
)

func main() {
	var (
		platName = flag.String("platform", "", "built-in platform name (Hera, Atlas, Coastal, Coastal-SSD); overrides the cost/rate flags")
		pattern  = flag.String("pattern", "all", "pattern family (PD, PDV*, PDV, PDM, PDMV*, PDMV) or 'all'")
		cd       = flag.Float64("cd", 300, "disk checkpoint cost CD (s)")
		cm       = flag.Float64("cm", 15.4, "memory checkpoint cost CM (s); V*=CM, V=CM/100, RD=CD, RM=CM")
		lf       = flag.Float64("lf", 9.46e-7, "fail-stop error rate lambda_f (/s)")
		ls       = flag.Float64("ls", 3.38e-6, "silent error rate lambda_s (/s)")
		recall   = flag.Float64("recall", 0.8, "partial verification recall r")
		exact    = flag.Bool("exact", false, "also compute the exact-model optimum (slower)")
		// Parallelism flags follow the repo-wide convention (DESIGN.md
		// §2.3): -campaign-workers fans independent (platform, family)
		// cells over a bounded pool and defaults to GOMAXPROCS.
		campaignWorkers = flag.Int("campaign-workers", runtime.GOMAXPROCS(0), "exact-ablation cells computed concurrently (0 = GOMAXPROCS); matches cmd/experiments -campaign-workers")
	)
	flag.Parse()
	if err := run(*platName, *pattern, *cd, *cm, *lf, *ls, *recall, *exact, *campaignWorkers); err != nil {
		fmt.Fprintln(os.Stderr, "respat:", err)
		os.Exit(1)
	}
}

func run(platName, pattern string, cd, cm, lf, ls, recall float64, exact bool, campaignWorkers int) error {
	if campaignWorkers <= 0 {
		campaignWorkers = runtime.GOMAXPROCS(0)
	}
	var costs respat.Costs
	var rates respat.Rates
	name := "custom"
	if platName != "" {
		p, err := platform.ByName(platName)
		if err != nil {
			return err
		}
		costs, rates, name = p.Costs, p.Rates, p.Name
	} else {
		costs = respat.Costs{
			DiskCkpt: cd, MemCkpt: cm, DiskRec: cd, MemRec: cm,
			GuarVer: cm, PartVer: cm / 100, Recall: recall,
		}
		rates = respat.Rates{FailStop: lf, Silent: ls}
	}

	kinds := respat.Kinds()
	if pattern != "all" {
		k, err := respat.ParseKind(pattern)
		if err != nil {
			return err
		}
		kinds = []respat.Kind{k}
	}

	t := report.New(fmt.Sprintf("Optimal patterns for %s (MTBF %.1f h)", name, rates.MTBF()/3600),
		"pattern", "W* (s)", "W* (h)", "n*", "m*", "H* (pred)", "H* (closed form)")
	for _, k := range kinds {
		plan, err := respat.Optimal(k, costs, rates)
		if err != nil {
			return err
		}
		t.AddRow(k.String(), report.Fixed(plan.W, 1), report.Fixed(plan.W/3600, 2),
			report.I(plan.N), report.I(plan.M),
			report.Pct(plan.Overhead, 3),
			report.Pct(analytic.TableOverhead(k, costs, rates), 3))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	if exact {
		rows, err := harness.Ablation([]platform.Platform{{
			Name: name, Nodes: 1, Costs: costs, Rates: rates,
		}}, kinds, campaignWorkers)
		if err != nil {
			return err
		}
		fmt.Println()
		return harness.RenderAblation(rows).Render(os.Stdout)
	}
	return nil
}
