// Benchmarks regenerating the paper's tables and figures, one target
// per artefact (see DESIGN.md §4 and EXPERIMENTS.md). The benchmark
// bodies run reduced-size campaigns so `go test -bench=.` completes in
// minutes; cmd/experiments -mode full reproduces the paper-scale runs.
// Custom metrics report the headline quantity of each artefact (e.g.
// simulated overhead) so shapes are visible straight from the bench
// output.
package respat_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"respat"
	"respat/internal/analytic"
	"respat/internal/cluster"
	"respat/internal/core"
	"respat/internal/harness"
	"respat/internal/multilevel"
	"respat/internal/obs"
	"respat/internal/optimize"
	"respat/internal/platform"
	"respat/internal/service"
	"respat/internal/twolevel"
)

// benchOpts is deliberately small; shapes remain stable because the
// seed is fixed. Campaign cells fan over all cores with one simulation
// goroutine per cell; results are bit-identical for any worker split.
func benchOpts() harness.Options {
	return harness.Options{
		Patterns: 30, Runs: 8, Seed: 1,
		Workers: 1, CampaignWorkers: runtime.GOMAXPROCS(0),
	}
}

func pick6(b *testing.B, rows []harness.Fig6Row, k core.Kind) harness.Fig6Row {
	b.Helper()
	for _, r := range rows {
		if r.Kind == k {
			return r
		}
	}
	b.Fatalf("missing %v", k)
	return harness.Fig6Row{}
}

// BenchmarkTable1Plans regenerates Table 1 (all six families on all
// four platforms) per iteration.
func BenchmarkTable1Plans(b *testing.B) {
	var rows []harness.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Table1(platform.Table2())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[0].Plan.Overhead, "Hera-PD-H*-%")
	b.ReportMetric(100*rows[5].Plan.Overhead, "Hera-PDMV-H*-%")
}

// BenchmarkTable2Derived regenerates the Table 2 derived MTBF figures.
func BenchmarkTable2Derived(b *testing.B) {
	var rows []harness.Table2Row
	for i := 0; i < b.N; i++ {
		rows = harness.Table2()
	}
	b.ReportMetric(rows[0].FailMTBFDays, "Hera-MTBFf-days")
	b.ReportMetric(rows[0].SilentMTBFDays, "Hera-MTBFs-days")
}

// BenchmarkFig6Overhead regenerates Figure 6a on Hera: predicted vs
// simulated overhead for all six families.
func BenchmarkFig6Overhead(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	var rows []harness.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig6([]platform.Platform{hera}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*pick6(b, rows, core.PD).Simulated, "PD-sim-%")
	b.ReportMetric(100*pick6(b, rows, core.PDMV).Simulated, "PDMV-sim-%")
	b.ReportMetric(100*pick6(b, rows, core.PDMV).Predicted, "PDMV-pred-%")
}

// BenchmarkFig6Periods regenerates Figure 6b: the optimal periods of
// all patterns on all platforms (analytic).
func BenchmarkFig6Periods(b *testing.B) {
	var rows []harness.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Table1(platform.Table2())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Plan.W/3600, "Hera-PD-hours")
	b.ReportMetric(rows[5].Plan.W/3600, "Hera-PDMV-hours")
}

// BenchmarkFig6Verifs regenerates Figure 6c on Hera: checkpoint and
// verification frequencies of the partial-verification pattern.
func BenchmarkFig6Verifs(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	var rows []harness.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig6([]platform.Platform{hera}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pick6(b, rows, core.PDV).VerifsPerHour, "PDV-verifs/h")
	b.ReportMetric(pick6(b, rows, core.PDMV).VerifsPerHour, "PDMV-verifs/h")
}

// BenchmarkFig6Ckpts regenerates Figure 6d on Hera: checkpointing
// frequencies of the two-level patterns.
func BenchmarkFig6Ckpts(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	var rows []harness.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig6([]platform.Platform{hera}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pick6(b, rows, core.PDMV).DiskCkptsPerHour, "PDMV-disk/h")
	b.ReportMetric(pick6(b, rows, core.PDMV).MemCkptsPerHour, "PDMV-mem/h")
}

// BenchmarkFig6Recoveries regenerates Figure 6e on Hera: recovery
// frequencies.
func BenchmarkFig6Recoveries(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	var rows []harness.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.Fig6([]platform.Platform{hera}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pick6(b, rows, core.PDMV).DiskRecsPerDay, "PDMV-diskrec/day")
	b.ReportMetric(pick6(b, rows, core.PDMV).MemRecsPerDay, "PDMV-memrec/day")
}

// BenchmarkFig7WeakScaling regenerates Figure 7 (CD=300, CM=15):
// overhead growth of PD vs PDMV with the node count.
func BenchmarkFig7WeakScaling(b *testing.B) {
	kinds := []core.Kind{core.PD, core.PDMV}
	var rows []harness.WeakRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.WeakScaling([]int{1 << 10, 1 << 14}, 300, 15, kinds, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Nodes == 1<<14 {
			b.ReportMetric(100*r.Simulated, r.Kind.String()+"-16k-sim-%")
		}
	}
}

// BenchmarkFig8WeakScalingCheapDisk regenerates Figure 8 (CD=90).
func BenchmarkFig8WeakScalingCheapDisk(b *testing.B) {
	kinds := []core.Kind{core.PD, core.PDMV}
	var rows []harness.WeakRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.WeakScaling([]int{1 << 10, 1 << 14}, 90, 15, kinds, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Nodes == 1<<14 {
			b.ReportMetric(100*r.Simulated, r.Kind.String()+"-16k-sim-%")
		}
	}
}

// BenchmarkFig9Surfaces regenerates Figures 9a-9c: the overhead
// surfaces of PD and PDMV over scaled (λf, λs) at 10^5 Hera nodes
// (corner points).
func BenchmarkFig9Surfaces(b *testing.B) {
	kinds := []core.Kind{core.PD, core.PDMV}
	grid := harness.Grid([]float64{0.2, 2})
	var pts []harness.RatePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.RateSweep(100000, grid, kinds, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.FailFactor == 2 && p.SilentFactor == 2 {
			b.ReportMetric(100*p.Simulated, p.Kind.String()+"-2x2x-sim-%")
		}
	}
}

// BenchmarkFig9FailStopSweep regenerates Figures 9d-9g: the λf sweep
// at nominal λs.
func BenchmarkFig9FailStopSweep(b *testing.B) {
	kinds := []core.Kind{core.PD, core.PDMV}
	var pts []harness.RatePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.RateSweep(100000, harness.AxisFail([]float64{0.2, 2}), kinds, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Kind == core.PDMV {
			b.ReportMetric(p.PeriodMinutes, "PDMV-period-min@"+formatFactor(p.FailFactor))
		}
	}
}

// BenchmarkFig9SilentSweep regenerates Figures 9h-9k: the λs sweep at
// nominal λf.
func BenchmarkFig9SilentSweep(b *testing.B) {
	kinds := []core.Kind{core.PD, core.PDMV}
	var pts []harness.RatePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = harness.RateSweep(100000, harness.AxisSilent([]float64{0.2, 2}), kinds, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Kind == core.PD {
			b.ReportMetric(p.PeriodMinutes, "PD-period-min@"+formatFactor(p.SilentFactor))
		}
	}
}

// BenchmarkAblationPlanners compares the first-order and exact-model
// planners on Hera (not a paper artefact; quantifies the approximation).
func BenchmarkAblationPlanners(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	var cmp optimize.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		cmp, err = optimize.Compare(core.PDMV, hera.Costs, hera.Rates)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*cmp.Regret, "regret-%")
}

// BenchmarkTwoLevelComparator optimises the related-work two-level
// fail-stop protocol numerically (§4.1 remark: no closed form exists)
// and reports its overhead next to the closed-form PDM solution for a
// rate-matched configuration.
func BenchmarkTwoLevelComparator(b *testing.B) {
	p := twolevel.Params{
		Lambda: 9.46e-7, LocalShare: 0.8,
		LocalCkpt: 15.4, DiskCkpt: 300, LocalRec: 15.4, DiskRec: 300,
	}
	var plan twolevel.Plan
	for i := 0; i < b.N; i++ {
		var err error
		plan, err = twolevel.Optimize(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*plan.Overhead, "twolevel-H*-%")
	b.ReportMetric(float64(plan.N), "twolevel-n*")
}

// BenchmarkMultilevelPlan optimises the 3-level hierarchy pattern for
// Hera (internal/multilevel): the full (W, n_1..n_L, m) search through
// the shared exact evaluator.
func BenchmarkMultilevelPlan(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	params, err := multilevel.FromPlatform(hera, 3)
	if err != nil {
		b.Fatal(err)
	}
	var plan multilevel.Plan
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan, err = multilevel.Optimize(params)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*plan.Overhead, "H*-%")
	b.ReportMetric(float64(plan.Spec.Counts[0]), "n1*")
}

// BenchmarkMultilevelEvaluator measures one exact expected-time
// evaluation of a 3-level spec through a reused evaluator — the inner
// loop of the multilevel planner's golden-section search.
func BenchmarkMultilevelEvaluator(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	params, err := multilevel.FromPlatform(hera, 3)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := multilevel.Optimize(params)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := multilevel.NewEvaluator(params)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ExpectedTime(plan.Spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceMultilevelHot measures the multilevel endpoint's
// cache-hit path — canonical level-vector key encoding plus the
// sharded LRU lookup. The contract extends DESIGN.md §2.4 to the new
// pattern family: 0 allocs/op (gated in CI by
// TestMultilevelHotPathZeroAlloc).
func BenchmarkServiceMultilevelHot(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	params, err := multilevel.FromPlatform(hera, 3)
	if err != nil {
		b.Fatal(err)
	}
	svc := service.New(service.Config{})
	if _, err := svc.PlanMultilevel(params); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.PlanMultilevel(params); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the core primitives.

func BenchmarkOptimalPlan(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	for i := 0; i < b.N; i++ {
		if _, err := analytic.Optimal(core.PDMV, hera.Costs, hera.Rates); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactExpectedTime(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	plan, err := analytic.Optimal(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analytic.ExactExpectedTime(plan.Pattern, hera.Costs, hera.Rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorEval measures one exact expected-time evaluation
// through a reused analytic.Evaluator, the inner loop of the exact
// planner's golden-section search.
func BenchmarkEvaluatorEval(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	plan, err := analytic.Optimal(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := analytic.NewEvaluator(hera.Costs, hera.Rates)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalLayout(core.PDMV, plan.N, plan.M, plan.W); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatePattern(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	plan, err := analytic.Optimal(core.PDMV, hera.Costs, hera.Rates)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := respat.Simulate(respat.SimConfig{
			Pattern: plan.Pattern, Costs: hera.Costs, Rates: hera.Rates,
			Patterns: 10, Runs: 1, Seed: uint64(i), ErrorsInOps: true, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetSmall runs a whole 500-job fleet campaign per
// iteration — plan, parallel per-job fault injection, FIFO/backfill
// dispatch, reduction (DESIGN.md §2.7) — and reports the cluster
// utilization as the headline metric. scripts/bench.sh gates its
// per-op budget so the fleet path cannot silently regress.
func BenchmarkFleetSmall(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	var util float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := respat.SimulateFleet(respat.FleetConfig{
			Platform: hera, Nodes: 64, Family: core.PDMV,
			NumJobs: 500, Rate: 1.0 / 7200, JobWork: 86400, WorkSpread: 4,
			Backfill: true, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		util = res.Utilization
	}
	b.ReportMetric(100*util, "%util")
}

// BenchmarkServicePlanHot measures the planning service's cache-hit
// path — canonical key encoding plus the sharded LRU lookup — for an
// exact-model plan that is already cached, with tracing compiled in
// and sampling enabled exactly as respatd runs it. Each iteration pays
// the full per-request trace lifecycle (Start → traced lookup →
// Finish) on the unsampled branch, the overwhelmingly common case. The
// contract (DESIGN.md §2.4 and §2.10) is 0 allocs/op and ≥ 100× the
// speed of the cold exact-plan path below.
func BenchmarkServicePlanHot(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	svc := service.New(service.Config{
		Tracer: obs.New(obs.Config{SampleEvery: 1 << 20}),
	})
	if _, err := svc.PlanExact(core.PDMV, hera.Costs, hera.Rates); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := svc.Tracer().Start("plan_exact", "", "")
		ctx := obs.NewContext(context.Background(), tr)
		if _, err := svc.PlanExactCtx(ctx, core.PDMV, hera.Costs, hera.Rates); err != nil {
			b.Fatal(err)
		}
		tr.Finish(200, "hit")
	}
}

// BenchmarkTraceRecord measures the sampled path: one full trace
// lifecycle with three recorded spans, a ring push and the Server-
// Timing render skipped (that happens per response, measured by the
// service benches). scripts/bench.sh holds it under an absolute
// budget, bounding the cost of -trace-sample 1 debugging sessions.
func BenchmarkTraceRecord(b *testing.B) {
	tracer := obs.New(obs.Config{SampleEvery: 1, Ring: 256})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tracer.Start("plan_exact", "", "")
		tm := tr.Begin(obs.StageDecode)
		tm.End("ok")
		tm = tr.Begin(obs.StageCacheLookup)
		tm.End("hit")
		tm = tr.Begin(obs.StageEncode)
		tm.End("")
		tr.Finish(200, "")
	}
}

// BenchmarkPromScrape renders the full Prometheus exposition — every
// counter, gauge and histogram family the service owns — against a
// tracer-enabled service. scripts/bench.sh budgets it so the scrape
// path stays cheap enough for aggressive scrape intervals.
func BenchmarkPromScrape(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	svc := service.New(service.Config{
		Tracer: obs.New(obs.Config{SampleEvery: 1}),
	})
	tr := svc.Tracer().Start("plan_exact", "", "")
	if _, err := svc.PlanExactCtx(obs.NewContext(context.Background(), tr), core.PDMV, hera.Costs, hera.Rates); err != nil {
		b.Fatal(err)
	}
	tr.Finish(200, "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServicePlanCold measures the cold exact-plan path: every
// iteration perturbs CD so the key is new and the full exact-model
// search runs (through the shard's reused evaluator).
func BenchmarkServicePlanCold(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	svc := service.New(service.Config{Capacity: 1 << 22})
	costs := hera.Costs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costs.DiskCkpt = 300 + float64(i)*1e-6
		if _, err := svc.PlanExact(core.PDMV, costs, hera.Rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceFirstOrderCold is the cold path of the first-order
// endpoint (Table 1 closed forms only), the cheapest computation the
// service fronts — the floor a cache hit is competing against.
func BenchmarkServiceFirstOrderCold(b *testing.B) {
	hera := mustPlatform(b, "Hera")
	svc := service.New(service.Config{Capacity: 1 << 22})
	costs := hera.Costs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		costs.DiskCkpt = 300 + float64(i)*1e-6
		if _, err := svc.Plan(core.PDMV, costs, hera.Rates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingRoute measures the consistent-hash owner lookup every
// clustered request pays before the cache probe: hash the canonical
// 139-byte key and binary-search the virtual-node table of a 16-replica
// ring. The contract (DESIGN.md §2.9) is 0 allocs/op; scripts/bench.sh
// gates it.
func BenchmarkRingRoute(b *testing.B) {
	members := make([]string, 16)
	for i := range members {
		members[i] = fmt.Sprintf("replica-%02d", i)
	}
	ring, err := cluster.New(1, 0, members)
	if err != nil {
		b.Fatal(err)
	}
	hera := mustPlatform(b, "Hera")
	keys := make([]service.Key, 64)
	for i := range keys {
		costs := hera.Costs
		costs.DiskCkpt += float64(i)
		keys[i] = service.EncodeKey(service.ModePlanExact, core.PDMV, costs, hera.Rates)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink string
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		sink = ring.Route(k[:])
	}
	_ = sink
}

func mustPlatform(b *testing.B, name string) platform.Platform {
	b.Helper()
	p, err := platform.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func formatFactor(f float64) string { return fmt.Sprintf("%gx", f) }
